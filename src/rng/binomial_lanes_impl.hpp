// Ops-templated implementation of the lane-batched BTRS cohort kernel,
// included by exactly the per-ISA TUs (binomial_lanes_{sse2,avx2}.cpp).
// Each TU supplies an `Ops` vector toolkit (intrinsics stay confined to
// .cpp files so every header still compiles standalone under baseline
// flags) and instantiates btrs_lanes_run at its lane width — usually
// through DualOps below, which doubles a toolkit's width so the kernel
// runs more independent streams than the register width alone gives.
//
// Bit-identity to the scalar sampler (rng/binomial_detail.hpp) is held
// by construction, not tuning:
//
//  * The per-(n, p) setup and the candidate transform replay the scalar
//    expressions term for term, and every vector operation used —
//    add/sub/mul/div/sqrt/floor/abs and the u64 -> double graft — is
//    exactly rounded per IEEE-754, so a lane's rounding cannot differ
//    from the scalar run's. -ffp-contract=off in the TU flags removes
//    the one compiler freedom (FMA fusion) that could break this.
//  * Each lane steps its own xoshiro stream with the exact Rng::next_u64
//    update; per-lane freeze masks stop an accepted lane's stream while
//    the group drains (a frozen lane recomputes ignored garbage).
//  * The squeeze-miss accept test (btrs_accept) consumes no randomness,
//    so it runs scalar per lane on spilled candidate values without
//    disturbing any mask.
//
// Execution model per group of W draws: gather the W xoshiro states and
// (n, p) pairs into SoA form, compute the BTRS setup vectorized, then run
// the two-uniforms-per-candidate accept/reject loop with branchless mask
// bookkeeping — range check, squeeze and lane retirement are all vector
// compares and blends, so the only per-lane branch left in the loop is
// the rare squeeze miss (~11% of candidates), which spills just the lanes
// it needs. States and raw draws scatter back once every lane retires.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rng/binomial_detail.hpp"
#include "rng/binomial_lanes.hpp"

namespace kusd::rng::detail {

/// Width-doubling adapter: presents two Base vectors as one logical
/// vector of 2 * Base::kWidth lanes. The point is latency hiding, not
/// register width — one BTRS group's operations form a serial dependency
/// chain (uniform -> candidate -> masks -> next iteration), so a single
/// hardware vector leaves the FP units mostly idle; interleaving two
/// independent halves doubles the work in flight at the same chain
/// depth. Compose (DualOps<DualOps<...>>) to widen further until
/// register pressure wins.
template <typename Base>
struct DualOps {
  static constexpr int kWidth = 2 * Base::kWidth;
  struct VU {
    typename Base::VU lo, hi;
  };
  struct VD {
    typename Base::VD lo, hi;
  };

  static VU load_u64(const std::uint64_t* p) {
    return {Base::load_u64(p), Base::load_u64(p + Base::kWidth)};
  }
  static void store_u64(std::uint64_t* p, VU x) {
    Base::store_u64(p, x.lo);
    Base::store_u64(p + Base::kWidth, x.hi);
  }
  static VD load_pd(const double* p) {
    return {Base::load_pd(p), Base::load_pd(p + Base::kWidth)};
  }
  static void store_pd(double* p, VD x) {
    Base::store_pd(p, x.lo);
    Base::store_pd(p + Base::kWidth, x.hi);
  }
  static VD set1_pd(double x) { return {Base::set1_pd(x), Base::set1_pd(x)}; }

  static VU add_u64(VU a, VU b) {
    return {Base::add_u64(a.lo, b.lo), Base::add_u64(a.hi, b.hi)};
  }
  static VU xor_u64(VU a, VU b) {
    return {Base::xor_u64(a.lo, b.lo), Base::xor_u64(a.hi, b.hi)};
  }
  template <int N>
  static VU slli(VU x) {
    return {Base::template slli<N>(x.lo), Base::template slli<N>(x.hi)};
  }
  template <int N>
  static VU rotl(VU x) {
    return {Base::template rotl<N>(x.lo), Base::template rotl<N>(x.hi)};
  }
  static VU blend_u64(VU a, VU b, VU mask) {
    return {Base::blend_u64(a.lo, b.lo, mask.lo),
            Base::blend_u64(a.hi, b.hi, mask.hi)};
  }

  static VD add_pd(VD a, VD b) {
    return {Base::add_pd(a.lo, b.lo), Base::add_pd(a.hi, b.hi)};
  }
  static VD sub_pd(VD a, VD b) {
    return {Base::sub_pd(a.lo, b.lo), Base::sub_pd(a.hi, b.hi)};
  }
  static VD mul_pd(VD a, VD b) {
    return {Base::mul_pd(a.lo, b.lo), Base::mul_pd(a.hi, b.hi)};
  }
  static VD div_pd(VD a, VD b) {
    return {Base::div_pd(a.lo, b.lo), Base::div_pd(a.hi, b.hi)};
  }
  static VD sqrt_pd(VD a) { return {Base::sqrt_pd(a.lo), Base::sqrt_pd(a.hi)}; }
  static VD abs_pd(VD a) { return {Base::abs_pd(a.lo), Base::abs_pd(a.hi)}; }
  static VD floor_pd(VD a) {
    return {Base::floor_pd(a.lo), Base::floor_pd(a.hi)};
  }

  static VD cmpge_pd(VD a, VD b) {
    return {Base::cmpge_pd(a.lo, b.lo), Base::cmpge_pd(a.hi, b.hi)};
  }
  static VD cmple_pd(VD a, VD b) {
    return {Base::cmple_pd(a.lo, b.lo), Base::cmple_pd(a.hi, b.hi)};
  }
  static VD and_pd(VD a, VD b) {
    return {Base::and_pd(a.lo, b.lo), Base::and_pd(a.hi, b.hi)};
  }
  static VD andnot_pd(VD a, VD b) {
    return {Base::andnot_pd(a.lo, b.lo), Base::andnot_pd(a.hi, b.hi)};
  }
  static VD blend_pd(VD a, VD b, VD mask) {
    return {Base::blend_pd(a.lo, b.lo, mask.lo),
            Base::blend_pd(a.hi, b.hi, mask.hi)};
  }
  static int movemask_pd(VD a) {
    return Base::movemask_pd(a.lo) |
           (Base::movemask_pd(a.hi) << Base::kWidth);
  }
  static VU castpd_u64(VD a) {
    return {Base::castpd_u64(a.lo), Base::castpd_u64(a.hi)};
  }
  static VD castu64_pd(VU a) {
    return {Base::castu64_pd(a.lo), Base::castu64_pd(a.hi)};
  }

  static VD u64_to_double(VU v) {
    return {Base::u64_to_double(v.lo), Base::u64_to_double(v.hi)};
  }
  static VD to_unit(VU word) {
    return {Base::to_unit(word.lo), Base::to_unit(word.hi)};
  }
};

/// One xoshiro256++ step for every lane (the exact Rng::next_u64 update).
/// Every lane steps unconditionally: retired lanes generate garbage the
/// caller ignores, having already captured their final state. Keeping the
/// update mask-free keeps the state recurrence — the loop's longest
/// serial dependency chain — as short as the scalar generator's.
template <typename Ops>
inline typename Ops::VU lanes_next_u64(typename Ops::VU& s0,
                                       typename Ops::VU& s1,
                                       typename Ops::VU& s2,
                                       typename Ops::VU& s3) {
  using VU = typename Ops::VU;
  const VU result = Ops::add_u64(Ops::template rotl<23>(Ops::add_u64(s0, s3)), s0);
  const VU t = Ops::template slli<17>(s1);
  VU n2 = Ops::xor_u64(s2, s0);
  VU n3 = Ops::xor_u64(s3, s1);
  s1 = Ops::xor_u64(s1, n2);
  s0 = Ops::xor_u64(s0, n3);
  s2 = Ops::xor_u64(n2, t);
  s3 = Ops::template rotl<45>(n3);
  return result;
}

/// Iteration cap per group before the stragglers fall back to the scalar
/// sampler. The accept/reject loop is memoryless, so a lane still live
/// after the cap continues its draw through a plain scalar btrs() call on
/// its current stream state — the candidate sequence, and therefore the
/// draw, is bit-identical to running the lane to completion in vector
/// code. P(a lane needs more than 3 candidates) is ~0.1%, and cutting the
/// tail bounds the per-group iteration count near its mean instead of the
/// max over W geometrics (the straggler cost grows with W).
inline constexpr int kMaxGroupRounds = 3;

template <typename Ops>
void btrs_group(const LaneBatchView& batch, std::size_t base) {
  constexpr int W = Ops::kWidth;
  using VD = typename Ops::VD;
  using VU = typename Ops::VU;

  // Gather lane streams and parameters into SoA form.
  alignas(32) std::uint64_t s0a[W], s1a[W], s2a[W], s3a[W], na[W];
  alignas(32) double pa[W];
  for (int l = 0; l < W; ++l) {
    const auto state = batch.rngs[base + l]->state();
    s0a[l] = state[0];
    s1a[l] = state[1];
    s2a[l] = state[2];
    s3a[l] = state[3];
    na[l] = batch.ns[base + l];
    pa[l] = batch.ps[base + l];
  }
  VU s0 = Ops::load_u64(s0a);
  VU s1 = Ops::load_u64(s1a);
  VU s2 = Ops::load_u64(s2a);
  VU s3 = Ops::load_u64(s3a);

  // Vectorized btrs_setup, term for term (see btrs_setup for the meaning
  // of each constant). u64_to_double is exactly rounded for the full u64
  // range, so dn matches static_cast<double>(n) bit-for-bit.
  const VD p = Ops::load_pd(pa);
  const VD dn = Ops::u64_to_double(Ops::load_u64(na));
  const VD one = Ops::set1_pd(1.0);
  const VD q = Ops::sub_pd(one, p);
  const VD spq = Ops::sqrt_pd(Ops::mul_pd(Ops::mul_pd(dn, p), q));
  const VD b =
      Ops::add_pd(Ops::set1_pd(1.15), Ops::mul_pd(Ops::set1_pd(2.53), spq));
  const VD a = Ops::add_pd(
      Ops::add_pd(Ops::set1_pd(-0.0873), Ops::mul_pd(Ops::set1_pd(0.0248), b)),
      Ops::mul_pd(Ops::set1_pd(0.01), p));
  const VD c = Ops::add_pd(Ops::mul_pd(dn, p), Ops::set1_pd(0.5));
  const VD v_r =
      Ops::sub_pd(Ops::set1_pd(0.92), Ops::div_pd(Ops::set1_pd(4.2), b));
  const VD m = Ops::floor_pd(Ops::mul_pd(Ops::add_pd(dn, one), p));
  const VD ratio = Ops::div_pd(p, q);
  // a + a == 2.0 * a exactly; hoisting it out of the candidate loop
  // changes no rounding.
  const VD two_a = Ops::add_pd(a, a);
  const VD zero = Ops::set1_pd(0.0);
  const VD squeeze_us = Ops::set1_pd(0.07);

  // Spill the setup for the scalar squeeze-miss path (btrs_accept reads
  // a BtrsSetup; the spill happens once per group, the miss is rare).
  alignas(32) double dna[W], spqa[W], ba[W], aa[W], ca[W], vra[W], ma[W],
      ratioa[W];
  Ops::store_pd(dna, dn);
  Ops::store_pd(spqa, spq);
  Ops::store_pd(ba, b);
  Ops::store_pd(aa, a);
  Ops::store_pd(ca, c);
  Ops::store_pd(vra, v_r);
  Ops::store_pd(ma, m);
  Ops::store_pd(ratioa, ratio);

  // f0..f3 capture each lane's stream state at the moment it retires;
  // live lanes keep stepping garbage afterwards. The captures sit off the
  // state recurrence's critical path.
  VU f0 = s0, f1 = s1, f2 = s2, f3 = s3;
  VD live = Ops::cmpge_pd(zero, zero);  // all lanes live
  VD result_d = zero;
  BtrsSlowTerms slow[W];
  int live_mask = (1 << W) - 1;
  for (int round = 0; round < kMaxGroupRounds; ++round) {
    const VD prev_live = live;
    // Two uniforms and the candidate transform for every lane — the
    // vectorized heart of the kernel. Order and association match the
    // scalar sampler exactly: us = 0.5 - |u|,
    // kd = floor((2a/us + b)*u + c).
    const VU w_u = lanes_next_u64<Ops>(s0, s1, s2, s3);
    const VU w_v = lanes_next_u64<Ops>(s0, s1, s2, s3);
    const VD u = Ops::sub_pd(Ops::to_unit(w_u), Ops::set1_pd(0.5));
    const VD v = Ops::to_unit(w_v);
    const VD us = Ops::sub_pd(Ops::set1_pd(0.5), Ops::abs_pd(u));
    const VD kd = Ops::floor_pd(Ops::add_pd(
        Ops::mul_pd(Ops::add_pd(Ops::div_pd(two_a, us), b), u), c));
    // Branchless bookkeeping. kd is never NaN (us == 0 forces |u| = 0.5,
    // making kd +-inf, which the ordered compares reject cleanly), so
    // in_range / squeeze / fast / miss are plain sign-bit masks:
    //   fast  — candidate in [0, dn] and inside the squeeze: retire now;
    //   miss  — in range but outside the squeeze: scalar btrs_accept;
    //   rest  — out of range: lane just retries next iteration.
    const VD in_range =
        Ops::and_pd(Ops::cmpge_pd(kd, zero), Ops::cmple_pd(kd, dn));
    const VD squeeze =
        Ops::and_pd(Ops::cmpge_pd(us, squeeze_us), Ops::cmple_pd(v, v_r));
    const VD fast = Ops::and_pd(Ops::and_pd(in_range, squeeze), live);
    result_d = Ops::blend_pd(result_d, kd, fast);
    live = Ops::andnot_pd(fast, live);
    const VD miss = Ops::and_pd(Ops::andnot_pd(squeeze, in_range), live);
    const int mm = Ops::movemask_pd(miss);
    if (mm != 0) {
      // Squeeze miss on ~11% of candidates: spill just what btrs_accept
      // needs, run the affected lanes scalar, and fold accepts back.
      alignas(32) double va[W], usa[W], kda[W], resa[W];
      alignas(32) std::uint64_t livea[W];
      Ops::store_pd(va, v);
      Ops::store_pd(usa, us);
      Ops::store_pd(kda, kd);
      Ops::store_pd(resa, result_d);
      Ops::store_u64(livea, Ops::castpd_u64(live));
      bool any = false;
      for (int l = 0; l < W; ++l) {
        if (((mm >> l) & 1) == 0) continue;
        const BtrsSetup setup{dna[l], spqa[l], ba[l], aa[l],
                              ca[l],  vra[l],  ma[l], ratioa[l]};
        if (btrs_accept(setup, na[l], va[l], usa[l], kda[l], slow[l])) {
          resa[l] = kda[l];
          livea[l] = 0;
          any = true;
        }
      }
      if (any) {
        result_d = Ops::load_pd(resa);
        live = Ops::castu64_pd(Ops::load_u64(livea));
      }
    }
    // Capture the stream state of every lane that retired this round
    // (prev_live & ~live): a lane's final state is exactly the state
    // after the two words it just consumed. Lanes retired in earlier
    // rounds keep their capture — their s registers have advanced past
    // their draw.
    const int now_live = Ops::movemask_pd(live);
    if (now_live != live_mask) {
      const VU cap = Ops::castpd_u64(Ops::andnot_pd(live, prev_live));
      f0 = Ops::blend_u64(f0, s0, cap);
      f1 = Ops::blend_u64(f1, s1, cap);
      f2 = Ops::blend_u64(f2, s2, cap);
      f3 = Ops::blend_u64(f3, s3, cap);
      live_mask = now_live;
      if (now_live == 0) break;
    }
  }
  // Scatter: retired lanes get their captured state; still-live lanes get
  // their current state and finish the draw with the scalar sampler —
  // the same candidate stream, continued.
  alignas(32) std::uint64_t f0a[W], f1a[W], f2a[W], f3a[W];
  Ops::store_u64(f0a, f0);
  Ops::store_u64(f1a, f1);
  Ops::store_u64(f2a, f2);
  Ops::store_u64(f3a, f3);
  Ops::store_u64(s0a, s0);
  Ops::store_u64(s1a, s1);
  Ops::store_u64(s2a, s2);
  Ops::store_u64(s3a, s3);
  alignas(32) double resa[W];
  Ops::store_pd(resa, result_d);
  for (int l = 0; l < W; ++l) {
    Rng& rng = *batch.rngs[base + l];
    if (((live_mask >> l) & 1) == 0) {
      rng.set_state({f0a[l], f1a[l], f2a[l], f3a[l]});
      batch.outs[base + l] = static_cast<std::uint64_t>(resa[l]);
    } else {
      rng.set_state({s0a[l], s1a[l], s2a[l], s3a[l]});
      const BtrsSetup setup{dna[l], spqa[l], ba[l], aa[l],
                            ca[l],  vra[l],  ma[l], ratioa[l]};
      batch.outs[base + l] = btrs(rng, setup, na[l]);
    }
  }
}

template <typename Ops>
void btrs_lanes_run(const LaneBatchView& batch) {
  constexpr int W = Ops::kWidth;
  std::size_t i = 0;
  for (; i + W <= batch.size; i += W) btrs_group<Ops>(batch, i);
  // Ragged tail (batch size not a multiple of W): the scalar sampler on
  // the same shared arithmetic.
  for (; i < batch.size; ++i) {
    const BtrsSetup setup = btrs_setup(batch.ns[i], batch.ps[i]);
    batch.outs[i] = btrs(*batch.rngs[i], setup, batch.ns[i]);
  }
}

}  // namespace kusd::rng::detail
