#include "rng/uniform_block.hpp"

#include "rng/rng.hpp"
#include "rng/simd.hpp"
#include "rng/uniform_block_tiers.hpp"

namespace kusd::rng {

namespace {

/// Portable reference path; the SIMD tiers must match it bit-for-bit.
void fill_scalar(std::uint64_t key, std::uint64_t counter_hi,
                 std::uint64_t counter_lo, std::span<double> out) {
  std::size_t i = 0;
  for (; i + 2 <= out.size(); i += 2, ++counter_lo) {
    const auto block = philox2x64(counter_lo, counter_hi, key);
    out[i] = static_cast<double>(block[0] >> 11) * 0x1.0p-53;
    out[i + 1] = static_cast<double>(block[1] >> 11) * 0x1.0p-53;
  }
  if (i < out.size()) {
    const auto block = philox2x64(counter_lo, counter_hi, key);
    out[i] = static_cast<double>(block[0] >> 11) * 0x1.0p-53;
  }
}

}  // namespace

void uniform_block(std::uint64_t key, std::uint64_t counter_hi,
                   std::uint64_t counter_lo, std::span<double> out) {
#if defined(KUSD_SIMD_ENABLED)
  switch (simd::active_tier()) {
    case simd::Tier::kAvx2:
      detail::uniform_block_avx2(key, counter_hi, counter_lo, out);
      return;
    case simd::Tier::kSse2:
      detail::uniform_block_sse2(key, counter_hi, counter_lo, out);
      return;
    case simd::Tier::kScalar:
      break;
  }
#endif
  fill_scalar(key, counter_hi, counter_lo, out);
}

void PhiloxUniformStream::refill() {
  buffer_.resize(kBufferSize);
  uniform_block(key_, counter_hi_, counter_lo_, buffer_);
  counter_lo_ += kBufferSize / 2;
  position_ = 0;
}

}  // namespace kusd::rng
