#include "rng/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace kusd::rng::simd {

namespace {

Tier detect_supported() {
#if !defined(KUSD_SIMD_ENABLED)
  return Tier::kScalar;
#elif defined(__x86_64__)
  // SSE2 is part of the x86-64 baseline, so only AVX2 needs a cpuid probe.
  return __builtin_cpu_supports("avx2") ? Tier::kAvx2 : Tier::kSse2;
#else
  return Tier::kScalar;
#endif
}

Tier clamp_to_supported(Tier tier) {
  return tier <= supported_tier() ? tier : supported_tier();
}

// KUSD_SIMD=auto|scalar|sse2|avx2 pins the startup tier; anything else
// (including unset) means auto. Read exactly once, before any sampling.
Tier initial_tier() {
  const char* env = std::getenv("KUSD_SIMD");
  if (env == nullptr) return supported_tier();
  if (std::strcmp(env, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(env, "sse2") == 0) return clamp_to_supported(Tier::kSse2);
  if (std::strcmp(env, "avx2") == 0) return clamp_to_supported(Tier::kAvx2);
  return supported_tier();
}

std::atomic<Tier>& active_slot() {
  static std::atomic<Tier> slot{initial_tier()};
  return slot;
}

}  // namespace

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "scalar";
}

Tier supported_tier() {
  static const Tier tier = detect_supported();
  return tier;
}

Tier active_tier() { return active_slot().load(std::memory_order_relaxed); }

Tier set_tier(Tier tier) {
  const Tier installed = clamp_to_supported(tier);
  active_slot().store(installed, std::memory_order_relaxed);
  return installed;
}

}  // namespace kusd::rng::simd
