// Interaction graphs (model generalization).
//
// The paper analyzes the population protocol model on the complete
// interaction graph; the broader literature it cites (e.g. Schoenebeck &
// Yu [41] on Erdos-Renyi graphs, Cooper et al. on expanders) restricts the
// scheduler to edges of a communication graph. We ship the standard
// topologies plus a graph-restricted scheduler so the USD (or any
// PairProtocol) can be run beyond the complete graph — the "future work"
// axis of the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace kusd::pp {

/// Undirected interaction graph stored as an edge list (an interaction
/// picks a uniformly random edge, then a uniformly random orientation).
/// The complete graph is held implicitly — K_n never materializes its
/// Theta(n^2) edges, so complete-topology runs scale like the
/// unrestricted scheduler in memory.
class InteractionGraph {
 public:
  /// Complete graph K_n (equivalent to the unrestricted scheduler
  /// conditioned on responder != initiator). Implicit: O(1) storage.
  static InteractionGraph complete(std::uint32_t n);
  /// Cycle C_n.
  static InteractionGraph cycle(std::uint32_t n);
  /// Random d-regular-ish graph via the configuration model with simple
  /// collision retry (multi-edges and self-loops removed; the result is
  /// near-d-regular, connected w.h.p. for d >= 3).
  static InteractionGraph random_regular(std::uint32_t n, int d,
                                         rng::Rng& rng);
  /// Erdos-Renyi G(n, p); pass p >= c ln n / n for connectivity w.h.p.
  static InteractionGraph erdos_renyi(std::uint32_t n, double p,
                                      rng::Rng& rng);

  [[nodiscard]] std::uint32_t num_vertices() const { return n_; }
  /// True for the implicitly-stored K_n (no edge list to iterate).
  [[nodiscard]] bool is_complete() const { return complete_; }
  [[nodiscard]] std::size_t num_edges() const {
    return complete_ ? static_cast<std::size_t>(n_) * (n_ - 1) / 2
                     : edges_.size();
  }
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> edge(
      std::size_t i) const;

  /// Sample a uniformly random ordered pair (responder, initiator) along
  /// an edge.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> sample_pair(
      rng::Rng& rng) const;

  /// True iff every vertex is reachable from vertex 0 (BFS).
  [[nodiscard]] bool is_connected() const;

 private:
  InteractionGraph(std::uint32_t n,
                   std::vector<std::pair<std::uint32_t, std::uint32_t>> edges);
  /// Implicit K_n (no edge list).
  explicit InteractionGraph(std::uint32_t n);

  std::uint32_t n_;
  bool complete_ = false;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
};

}  // namespace kusd::pp
