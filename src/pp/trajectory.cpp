#include "pp/trajectory.hpp"

#include "util/check.hpp"

namespace kusd::pp {

Trajectory::Trajectory(std::size_t max_points) : max_points_(max_points) {
  KUSD_CHECK_MSG(max_points >= 4, "need room for at least four points");
  points_.reserve(max_points);
}

void Trajectory::record(std::uint64_t t, std::span<const Count> opinions,
                        Count undecided) {
  if (t < next_accept_) return;
  next_accept_ = t + stride_;
  TrajectoryPoint pt;
  pt.t = t;
  pt.undecided = undecided;
  for (Count c : opinions) {
    if (c >= pt.xmax) {
      pt.second = pt.xmax;
      pt.xmax = c;
    } else if (c > pt.second) {
      pt.second = c;
    }
    pt.sum_squares +=
        static_cast<double>(c) * static_cast<double>(c);
  }
  points_.push_back(pt);
  if (points_.size() >= max_points_) {
    // Thin: keep every other point, double the stride.
    std::vector<TrajectoryPoint> kept;
    kept.reserve(max_points_ / 2 + 1);
    for (std::size_t i = 0; i < points_.size(); i += 2) {
      kept.push_back(points_[i]);
    }
    points_ = std::move(kept);
    stride_ *= 2;
  }
}

}  // namespace kusd::pp
