#include "pp/scheduler.hpp"

#include "rng/rng.hpp"
#include "urn/urn.hpp"
#include "util/check.hpp"

namespace kusd::pp {

namespace {
// Tabulate delta when the table stays under ~4 MiB.
constexpr int kMaxTabulatedStates = 700;
}  // namespace

CountScheduler::CountScheduler(const PairProtocol& protocol,
                               std::span<const std::uint64_t> initial_counts,
                               rng::Rng rng, urn::UrnEngine engine)
    : protocol_(protocol),
      urn_(initial_counts, engine),
      rng_(rng),
      num_states_(protocol.num_states()) {
  KUSD_CHECK_MSG(static_cast<int>(initial_counts.size()) == num_states_,
                 "initial counts must cover every protocol state");
  KUSD_CHECK_MSG(urn_.total() > 0, "empty population");
  if (num_states_ <= kMaxTabulatedStates) {
    table_.resize(static_cast<std::size_t>(num_states_) *
                  static_cast<std::size_t>(num_states_));
    for (int r = 0; r < num_states_; ++r) {
      for (int i = 0; i < num_states_; ++i) {
        table_[static_cast<std::size_t>(r) *
                   static_cast<std::size_t>(num_states_) +
               static_cast<std::size_t>(i)] = protocol.apply(r, i);
      }
    }
  }
}

void CountScheduler::step() {
  const auto responder = static_cast<int>(urn_.sample(rng_));
  const auto initiator = static_cast<int>(urn_.sample(rng_));
  PairTransition next{};
  if (!table_.empty()) {
    next = table_[static_cast<std::size_t>(responder) *
                      static_cast<std::size_t>(num_states_) +
                  static_cast<std::size_t>(initiator)];
  } else {
    next = protocol_.apply(responder, initiator);
  }
  ++steps_;
  if (next.responder == responder && next.initiator == initiator) return;
  // Note: with counts we cannot distinguish the self-interaction corner case
  // (same agent drawn twice). For responder-only protocols such as the USD
  // this is irrelevant: delta(q, q) leaves the responder unchanged, so a
  // self-pair is always unproductive, exactly as in the agent-level model.
  urn_.move(static_cast<std::size_t>(responder),
            static_cast<std::size_t>(next.responder));
  urn_.move(static_cast<std::size_t>(initiator),
            static_cast<std::size_t>(next.initiator));
}

std::uint64_t CountScheduler::run_until(
    const std::function<bool(std::span<const std::uint64_t>)>& stop,
    std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (executed < max_steps && !stop(urn_.counts())) {
    step();
    ++executed;
  }
  return executed;
}

AgentScheduler::AgentScheduler(const PairProtocol& protocol,
                               std::span<const std::uint64_t> initial_counts,
                               rng::Rng rng)
    : protocol_(protocol),
      counts_(initial_counts.begin(), initial_counts.end()),
      rng_(rng) {
  KUSD_CHECK(static_cast<int>(initial_counts.size()) ==
             protocol.num_states());
  std::uint64_t n = 0;
  for (auto c : initial_counts) n += c;
  KUSD_CHECK_MSG(n > 0, "empty population");
  agents_.reserve(n);
  for (std::size_t s = 0; s < initial_counts.size(); ++s) {
    agents_.insert(agents_.end(), initial_counts[s], static_cast<int>(s));
  }
}

void AgentScheduler::step() {
  const auto n = static_cast<std::uint64_t>(agents_.size());
  const auto responder = static_cast<std::size_t>(rng_.bounded(n));
  const auto initiator = static_cast<std::size_t>(rng_.bounded(n));
  const int rs = agents_[responder];
  const int is = agents_[initiator];
  ++steps_;
  if (responder == initiator) return;  // self-interaction: no state change
  const PairTransition next = protocol_.apply(rs, is);
  if (next.responder != rs) {
    agents_[responder] = next.responder;
    --counts_[static_cast<std::size_t>(rs)];
    ++counts_[static_cast<std::size_t>(next.responder)];
  }
  if (next.initiator != is) {
    agents_[initiator] = next.initiator;
    --counts_[static_cast<std::size_t>(is)];
    ++counts_[static_cast<std::size_t>(next.initiator)];
  }
}

std::uint64_t AgentScheduler::run_until(
    const std::function<bool(std::span<const std::uint64_t>)>& stop,
    std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (executed < max_steps && !stop(counts_)) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace kusd::pp
