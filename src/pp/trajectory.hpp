// Trajectory recorder: downsampled time series of a run, exportable to
// CSV for external plotting. Used by phase_trace and the equilibrium
// experiments.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pp/configuration.hpp"

namespace kusd::pp {

/// One recorded snapshot.
struct TrajectoryPoint {
  std::uint64_t t = 0;
  Count undecided = 0;
  Count xmax = 0;
  Count second = 0;
  double sum_squares = 0.0;
};

class Trajectory {
 public:
  /// Keep at most `max_points` snapshots; when full, every other stored
  /// point is dropped and the acceptance stride doubles (so memory stays
  /// bounded however long the run is, with uniform time coverage).
  explicit Trajectory(std::size_t max_points = 4096);

  /// Record a snapshot (call from a simulator observer).
  void record(std::uint64_t t, std::span<const Count> opinions,
              Count undecided);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<TrajectoryPoint>& points() const {
    return points_;
  }

 private:
  std::size_t max_points_;
  std::uint64_t stride_ = 1;
  std::uint64_t next_accept_ = 0;
  std::vector<TrajectoryPoint> points_;
};

}  // namespace kusd::pp
