// Configuration of the population: the count vector x = (x_1..x_k, u).
//
// This mirrors the paper's notation (Section 2): x_i(t) is the number of
// agents holding Opinion i, u(t) the number of undecided agents, and
// n = u + sum_i x_i is invariant. Opinions are 0-based in code (Opinion 1 of
// the paper is index 0 when configurations are built sorted-descending, as
// the paper assumes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kusd::pp {

using Count = std::uint64_t;

class Configuration {
 public:
  /// Build from explicit opinion counts plus the undecided count.
  Configuration(std::vector<Count> opinion_counts, Count undecided);

  // ---- Factories for the initial configurations the paper considers ----

  /// Unbiased start: the n - undecided decided agents are split as evenly
  /// as possible over k opinions (largest first).
  static Configuration uniform(Count n, int k, Count undecided = 0);

  /// Additive bias: x_0 >= x_i + beta for all i != 0, the remaining support
  /// split evenly. Matches Theorem 2(2)'s precondition when
  /// beta = Omega(sqrt(n log n)).
  static Configuration with_additive_bias(Count n, int k, Count undecided,
                                          Count beta);

  /// Multiplicative bias: x_0 >= alpha * x_i for all i != 0 (alpha > 1),
  /// the remaining support split evenly. Matches Theorem 2(1)'s
  /// precondition with alpha = 1 + eps.
  static Configuration with_multiplicative_bias(Count n, int k,
                                                Count undecided, double alpha);

  /// Geometric profile: x_i proportional to ratio^i (ratio in (0,1]); used
  /// to sweep the monochromatic distance for the Appendix D comparison.
  static Configuration geometric(Count n, int k, Count undecided,
                                 double ratio);

  /// Two-opinion convenience: (x0, n - undecided - x0, u).
  static Configuration two_opinion(Count n, Count x0, Count undecided);

  // ---- Accessors ----

  [[nodiscard]] int k() const { return static_cast<int>(opinions_.size()); }
  [[nodiscard]] Count n() const { return n_; }
  [[nodiscard]] Count opinion(int i) const {
    return opinions_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Count undecided() const { return undecided_; }
  [[nodiscard]] Count decided() const { return n_ - undecided_; }
  [[nodiscard]] std::span<const Count> opinions() const { return opinions_; }

  /// Counts of all k+1 states with the undecided state appended at index k,
  /// the layout the schedulers use.
  [[nodiscard]] std::vector<Count> state_counts() const;

  /// Support of the currently largest opinion (x_max in the paper).
  [[nodiscard]] Count xmax() const;
  /// Index of a largest opinion (smallest index on ties, like max(t)).
  [[nodiscard]] int argmax() const;
  /// Support of the second-largest opinion (0 if k == 1).
  [[nodiscard]] Count second_largest() const;

  /// True iff some opinion is held by all n agents (Phase 5 end condition).
  [[nodiscard]] bool is_consensus() const;

  /// Sum of squared opinion supports, the r^2(t) of Appendix B.
  [[nodiscard]] double sum_squares() const;

 private:
  std::vector<Count> opinions_;
  Count undecided_ = 0;
  Count n_ = 0;
};

}  // namespace kusd::pp
