// Graph-restricted scheduler: one uniformly random edge per interaction.
//
// On the complete graph this is the standard population protocol scheduler
// conditioned on responder != initiator (the paper's self-interactions are
// unproductive for the USD, so the two models have identical productive
// dynamics). On restricted topologies it generalizes the model the way the
// cited graph literature does.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pp/graph.hpp"
#include "pp/protocol.hpp"
#include "rng/rng.hpp"

namespace kusd::pp {

class GraphScheduler {
 public:
  /// `initial_states[v]` is the starting state of vertex v; values must be
  /// in [0, protocol.num_states()).
  GraphScheduler(const PairProtocol& protocol, const InteractionGraph& graph,
                 std::vector<int> initial_states, rng::Rng rng);

  void step();
  std::uint64_t run_until(
      const std::function<bool(std::span<const std::uint64_t>)>& stop,
      std::uint64_t max_steps);

  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::span<const int> states() const { return states_; }
  /// Per-state counts, maintained incrementally.
  [[nodiscard]] std::span<const std::uint64_t> counts() const {
    return counts_;
  }

 private:
  const PairProtocol& protocol_;
  const InteractionGraph& graph_;
  std::vector<int> states_;
  std::vector<std::uint64_t> counts_;
  rng::Rng rng_;
  std::uint64_t steps_ = 0;
};

}  // namespace kusd::pp
