#include "pp/degree_classes.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "pp/graph.hpp"
#include "rng/binomial.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::pp {

DegreeClassModel::DegreeClassModel(std::vector<DegreeClass> classes)
    : classes_(std::move(classes)) {
  Count total = 0;
  for (const auto& c : classes_) {
    KUSD_CHECK_MSG(c.degree >= 0.0 && std::isfinite(c.degree),
                   "degree classes need a finite, non-negative degree");
    total += c.size;
  }
  KUSD_CHECK_MSG(total >= 1, "a degree-class model needs at least one vertex");
}

DegreeClassModel DegreeClassModel::regular(Count n, double degree) {
  KUSD_CHECK_MSG(n >= 2, "a topology needs at least two vertices");
  KUSD_CHECK_MSG(degree > 0.0, "a regular class needs a positive degree");
  return DegreeClassModel({DegreeClass{degree, n}});
}

DegreeClassModel DegreeClassModel::binomial(Count n, double p, int max_classes,
                                            rng::Rng& rng) {
  KUSD_CHECK_MSG(n >= 2, "a topology needs at least two vertices");
  KUSD_CHECK_MSG(p > 0.0 && p <= 1.0, "edge probability out of range");
  KUSD_CHECK_MSG(max_classes >= 1, "need at least one degree class");
  const double trials = static_cast<double>(n - 1);
  if (p == 1.0) return regular(n, trials);

  // Support window of Binomial(n-1, p): +-8 sigma around the mean covers
  // all but ~1e-15 of the mass, so truncating there never starves the
  // multinomial below.
  const double mean = trials * p;
  const double sigma = std::sqrt(trials * p * (1.0 - p));
  const auto lo = static_cast<std::uint64_t>(
      std::max(0.0, std::floor(mean - 8.0 * sigma)));
  const auto hi = static_cast<std::uint64_t>(
      std::min(trials, std::ceil(mean + 8.0 * sigma)));
  const std::uint64_t support = hi - lo + 1;
  const auto buckets = static_cast<std::uint64_t>(
      std::min<std::uint64_t>(support, static_cast<std::uint64_t>(max_classes)));

  // Per-bucket pmf mass and pmf-weighted mean degree, via the log-pmf
  // (stable for the huge n the aggregated engine exists for). All three
  // factorials are of integers, so rng::log_factorial applies — and
  // unlike glibc's lgamma it never touches the process-global signgam,
  // keeping concurrent per-point topology realization race-free.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  const double lg_np1 = rng::log_factorial(n - 1);
  std::vector<double> mass(buckets, 0.0);
  std::vector<double> mean_degree(buckets, 0.0);
  for (std::uint64_t d = lo; d <= hi; ++d) {
    const double dd = static_cast<double>(d);
    const double log_pmf = lg_np1 - rng::log_factorial(d) -
                           rng::log_factorial((n - 1) - d) + dd * log_p +
                           (trials - dd) * log_q;
    const double pmf = std::exp(log_pmf);
    const std::uint64_t b = (d - lo) * buckets / support;
    mass[b] += pmf;
    mean_degree[b] += pmf * dd;
  }

  const auto sizes = rng.multinomial(n, mass);
  std::vector<DegreeClass> classes;
  classes.reserve(buckets);
  for (std::uint64_t b = 0; b < buckets; ++b) {
    if (sizes[b] == 0) continue;
    classes.push_back(DegreeClass{
        mass[b] > 0.0 ? mean_degree[b] / mass[b] : 0.0, sizes[b]});
  }
  return DegreeClassModel(std::move(classes));
}

DegreeClassModel DegreeClassModel::from_graph(const InteractionGraph& graph) {
  const Count n = graph.num_vertices();
  if (graph.is_complete()) {
    return regular(n, static_cast<double>(n - 1));
  }
  std::vector<Count> degree(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    const auto [u, v] = graph.edge(i);
    ++degree[u];
    ++degree[v];
  }
  std::map<Count, Count> histogram;
  for (const Count d : degree) ++histogram[d];
  std::vector<DegreeClass> classes;
  classes.reserve(histogram.size());
  for (const auto& [d, size] : histogram) {
    classes.push_back(DegreeClass{static_cast<double>(d), size});
  }
  return DegreeClassModel(std::move(classes));
}

Count DegreeClassModel::num_vertices() const {
  Count total = 0;
  for (const auto& c : classes_) total += c.size;
  return total;
}

double DegreeClassModel::total_degree() const {
  double total = 0.0;
  for (const auto& c : classes_) {
    total += c.degree * static_cast<double>(c.size);
  }
  return total;
}

bool DegreeClassModel::has_isolated_vertices() const {
  for (const auto& c : classes_) {
    if (c.degree <= 0.0 && c.size > 0) return true;
  }
  return false;
}

}  // namespace kusd::pp
