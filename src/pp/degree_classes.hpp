// Degree-class aggregation of an interaction topology.
//
// The per-interaction graph scheduler stores O(n) vertex states and an
// explicit (or implicit) edge set. For topologies whose structure is
// captured by a degree profile — degree-regular families and dense
// Erdős–Rényi graphs — the *annealed* scheduler is the standard
// aggregation (cf. the sparse-topology scaling argument of the related
// literature): instead of fixing one edge set, every interaction samples
// its responder and initiator independently with probability proportional
// to vertex degree. A DegreeClassModel is the whole state such a scheduler
// needs: a handful of (degree, size) classes, so populations collapse from
// O(n) vertices to O(classes) counts and n >= 1e8 runs fit in cache.
//
// Exactness. For a single degree class (complete, cycle, regular:<d>) the
// annealed endpoint distribution is uniform over ordered vertex pairs —
// identical to the complete-graph scheduler up to self-interactions (which
// are unproductive for the USD). The aggregation is therefore exact in
// distribution on `complete`, a mean-field approximation on well-mixing
// regular graphs (random regular d >= 3, dense ER), and deliberately
// ignores slow mixing on low-conductance families like the cycle (use the
// per-interaction engine there; see docs/architecture.md).
#pragma once

#include <cstdint>
#include <vector>

#include "pp/configuration.hpp"
#include "rng/rng.hpp"

namespace kusd::pp {

class InteractionGraph;

/// One degree class: `size` vertices, each entering interactions with
/// sampling weight `degree` (a double: bucketed ER classes carry the
/// pmf-weighted mean degree of their bucket).
struct DegreeClass {
  double degree = 0.0;
  Count size = 0;

  bool operator==(const DegreeClass&) const = default;
};

class DegreeClassModel {
 public:
  DegreeClassModel() = default;
  /// Throws util::CheckError on a negative degree or a zero total size.
  explicit DegreeClassModel(std::vector<DegreeClass> classes);

  /// The degree-regular families: one class of n vertices of degree d.
  static DegreeClassModel regular(Count n, double degree);

  /// G(n, p) degrees (Binomial(n-1, p)) realized as class sizes: the
  /// binomial pmf over a +-8-sigma window is bucketed into at most
  /// `max_classes` classes and the n vertices are split multinomially
  /// over the buckets (each bucket's weight = its pmf mass, its degree =
  /// the pmf-weighted mean of its bucket). Deterministic given `rng`.
  /// A realized zero-degree class models the isolated vertices of sparse
  /// G(n, p) — see has_isolated_vertices().
  static DegreeClassModel binomial(Count n, double p, int max_classes,
                                   rng::Rng& rng);

  /// Measured degree histogram of a materialized graph (one class per
  /// distinct degree; vertices of degree 0 form a class of degree 0).
  static DegreeClassModel from_graph(const InteractionGraph& graph);

  [[nodiscard]] const std::vector<DegreeClass>& classes() const {
    return classes_;
  }
  [[nodiscard]] std::size_t num_classes() const { return classes_.size(); }
  /// Sum of class sizes.
  [[nodiscard]] Count num_vertices() const;
  /// Sum of degree * size — twice the (expected) edge count.
  [[nodiscard]] double total_degree() const;
  [[nodiscard]] double expected_edges() const { return total_degree() / 2.0; }
  /// True iff a zero-degree class of positive size exists: such vertices
  /// never interact, so a population containing them cannot reach
  /// consensus (the aggregated analogue of a disconnected topology).
  [[nodiscard]] bool has_isolated_vertices() const;

  bool operator==(const DegreeClassModel&) const = default;

 private:
  std::vector<DegreeClass> classes_;
};

}  // namespace kusd::pp
