// Generic population-protocol interface.
//
// A population protocol is a transition function delta : Q x Q -> Q x Q
// applied to a (responder, initiator) pair drawn uniformly at random with
// replacement (the paper allows self-interaction). States are dense
// integers in [0, num_states()).
#pragma once

#include <cstdint>

namespace kusd::pp {

/// Result of applying delta to (responder, initiator).
struct PairTransition {
  int responder = 0;
  int initiator = 0;
};

/// Abstract transition function. Implementations must be pure (stateless
/// w.r.t. the population) so schedulers may tabulate them.
class PairProtocol {
 public:
  virtual ~PairProtocol() = default;

  /// Number of agent states |Q|.
  [[nodiscard]] virtual int num_states() const = 0;

  /// delta(responder, initiator).
  [[nodiscard]] virtual PairTransition apply(int responder,
                                             int initiator) const = 0;
};

}  // namespace kusd::pp
