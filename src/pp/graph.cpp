#include "pp/graph.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::pp {

InteractionGraph::InteractionGraph(
    std::uint32_t n,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges)
    : n_(n), edges_(std::move(edges)) {
  KUSD_CHECK_MSG(n >= 2, "a graph needs at least two vertices");
  KUSD_CHECK_MSG(!edges_.empty(), "a graph needs at least one edge");
}

InteractionGraph::InteractionGraph(std::uint32_t n) : n_(n), complete_(true) {
  KUSD_CHECK_MSG(n >= 2, "a graph needs at least two vertices");
}

InteractionGraph InteractionGraph::complete(std::uint32_t n) {
  return InteractionGraph(n);
}

std::pair<std::uint32_t, std::uint32_t> InteractionGraph::edge(
    std::size_t i) const {
  if (!complete_) return edges_[i];
  // Linear index over the upper triangle: row u covers indices
  // [u*n - u*(u+1)/2, ...) of length n - 1 - u.
  std::uint32_t u = 0;
  std::uint64_t rem = i;
  while (rem >= static_cast<std::uint64_t>(n_ - 1 - u)) {
    rem -= n_ - 1 - u;
    ++u;
  }
  return {u, static_cast<std::uint32_t>(u + 1 + rem)};
}

InteractionGraph InteractionGraph::cycle(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n);
  for (std::uint32_t u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::random_regular(std::uint32_t n, int d,
                                                  rng::Rng& rng) {
  KUSD_CHECK_MSG(d >= 1 && static_cast<std::uint32_t>(d) < n,
                 "degree out of range");
  KUSD_CHECK_MSG((static_cast<std::uint64_t>(n) * d) % 2 == 0,
                 "n * d must be even");
  // Configuration model with retry on collisions; drop residual
  // self-loops / multi-edges (degree error is O(d^2/n)).
  std::vector<std::uint32_t> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (int i = 0; i < d; ++i) stubs.push_back(v);
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> edge_set;
  for (int attempt = 0; attempt < 50; ++attempt) {
    edge_set.clear();
    rng.shuffle(std::span<std::uint32_t>(stubs));
    bool clean = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      std::uint32_t u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        clean = false;
        continue;
      }
      if (u > v) std::swap(u, v);
      if (!edge_set.emplace(u, v).second) clean = false;
    }
    if (clean) break;  // otherwise keep the de-duplicated edge set
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges(
      edge_set.begin(), edge_set.end());
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::erdos_renyi(std::uint32_t n, double p,
                                               rng::Rng& rng) {
  KUSD_CHECK_MSG(p > 0.0 && p <= 1.0, "edge probability out of range");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  // Geometric skipping over the (n choose 2) potential edges: O(#edges).
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = p < 1.0 ? rng.geometric_failures(p) : 0;
  while (idx < total) {
    // Map linear index -> (u, v), u < v.
    // Row u covers indices [u*n - u*(u+1)/2, ...) of length n-1-u.
    std::uint32_t u = 0;
    std::uint64_t rem = idx;
    while (rem >= static_cast<std::uint64_t>(n - 1 - u)) {
      rem -= n - 1 - u;
      ++u;
    }
    const auto v = static_cast<std::uint32_t>(u + 1 + rem);
    edges.emplace_back(u, v);
    idx += 1 + (p < 1.0 ? rng.geometric_failures(p) : 0);
  }
  KUSD_CHECK_MSG(!edges.empty(), "G(n,p) came out empty; increase p");
  return InteractionGraph(n, std::move(edges));
}

std::pair<std::uint32_t, std::uint32_t> InteractionGraph::sample_pair(
    rng::Rng& rng) const {
  if (complete_) {
    // Uniform ordered pair of distinct vertices — identical in law to
    // edge-then-orientation, without touching an edge list.
    const auto u = static_cast<std::uint32_t>(rng.bounded(n_));
    auto v = static_cast<std::uint32_t>(rng.bounded(n_ - 1));
    if (v >= u) ++v;
    return {u, v};
  }
  const auto& e = edges_[static_cast<std::size_t>(rng.bounded(
      static_cast<std::uint64_t>(edges_.size())))];
  return rng.bernoulli(0.5) ? std::make_pair(e.first, e.second)
                            : std::make_pair(e.second, e.first);
}

bool InteractionGraph::is_connected() const {
  if (complete_) return true;
  std::vector<std::vector<std::uint32_t>> adj(n_);
  for (const auto& [u, v] : edges_) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<bool> seen(n_, false);
  std::queue<std::uint32_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::uint32_t visited = 1;
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (std::uint32_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == n_;
}

}  // namespace kusd::pp
