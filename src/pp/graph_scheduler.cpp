#include "pp/graph_scheduler.hpp"

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::pp {

GraphScheduler::GraphScheduler(const PairProtocol& protocol,
                               const InteractionGraph& graph,
                               std::vector<int> initial_states, rng::Rng rng)
    : protocol_(protocol),
      graph_(graph),
      states_(std::move(initial_states)),
      counts_(static_cast<std::size_t>(protocol.num_states()), 0),
      rng_(rng) {
  KUSD_CHECK_MSG(states_.size() == graph.num_vertices(),
                 "one initial state per vertex required");
  for (int s : states_) {
    KUSD_CHECK_MSG(s >= 0 && s < protocol.num_states(),
                   "initial state out of range");
    ++counts_[static_cast<std::size_t>(s)];
  }
}

void GraphScheduler::step() {
  const auto [responder, initiator] = graph_.sample_pair(rng_);
  const int rs = states_[responder];
  const int is = states_[initiator];
  ++steps_;
  const PairTransition next = protocol_.apply(rs, is);
  if (next.responder != rs) {
    states_[responder] = next.responder;
    --counts_[static_cast<std::size_t>(rs)];
    ++counts_[static_cast<std::size_t>(next.responder)];
  }
  if (next.initiator != is) {
    states_[initiator] = next.initiator;
    --counts_[static_cast<std::size_t>(is)];
    ++counts_[static_cast<std::size_t>(next.initiator)];
  }
}

std::uint64_t GraphScheduler::run_until(
    const std::function<bool(std::span<const std::uint64_t>)>& stop,
    std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (executed < max_steps && !stop(counts_)) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace kusd::pp
