// Schedulers: the three execution engines for population protocols.
//
//  * CountScheduler — samples state *categories* by their counts (agents are
//    anonymous, so this is distributionally identical to sampling agents);
//    O(log k) per interaction via the urn. The workhorse engine.
//  * AgentScheduler — keeps an explicit agent array and samples indices.
//    O(1) per interaction but O(n) memory; serves as the executable ground
//    truth the count engine is validated against.
//
// Both engines simulate the exact same Markov chain: one uniformly random
// ordered pair (responder, initiator) per step, with replacement.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pp/protocol.hpp"
#include "rng/rng.hpp"
#include "urn/urn.hpp"

namespace kusd::pp {

/// Count-based scheduler for an arbitrary PairProtocol.
class CountScheduler {
 public:
  /// `initial_counts` has one entry per protocol state. The transition
  /// function is tabulated when num_states^2 is small enough.
  CountScheduler(const PairProtocol& protocol,
                 std::span<const std::uint64_t> initial_counts,
                 rng::Rng rng,
                 urn::UrnEngine engine = urn::UrnEngine::kAuto);

  /// Execute one interaction.
  void step();

  /// Execute interactions until `stop(counts)` returns true or `max_steps`
  /// is reached. Returns the number of interactions executed.
  std::uint64_t run_until(
      const std::function<bool(std::span<const std::uint64_t>)>& stop,
      std::uint64_t max_steps);

  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::span<const std::uint64_t> counts() const {
    return urn_.counts();
  }
  [[nodiscard]] std::uint64_t n() const { return urn_.total(); }
  [[nodiscard]] rng::Rng& rng() { return rng_; }

 private:
  const PairProtocol& protocol_;
  urn::Urn urn_;
  rng::Rng rng_;
  std::uint64_t steps_ = 0;
  int num_states_;
  // Tabulated delta, indexed responder * num_states + initiator; empty when
  // the state space is too large to tabulate.
  std::vector<PairTransition> table_;
};

/// Explicit-agent scheduler: ground truth for validation and for protocols
/// whose state space is too rich to count.
class AgentScheduler {
 public:
  AgentScheduler(const PairProtocol& protocol,
                 std::span<const std::uint64_t> initial_counts, rng::Rng rng);

  void step();
  std::uint64_t run_until(
      const std::function<bool(std::span<const std::uint64_t>)>& stop,
      std::uint64_t max_steps);

  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  /// Per-state counts, maintained incrementally.
  [[nodiscard]] std::span<const std::uint64_t> counts() const {
    return counts_;
  }
  [[nodiscard]] std::span<const int> agents() const { return agents_; }
  [[nodiscard]] std::uint64_t n() const { return agents_.size(); }

 private:
  const PairProtocol& protocol_;
  std::vector<int> agents_;
  std::vector<std::uint64_t> counts_;
  rng::Rng rng_;
  std::uint64_t steps_ = 0;
};

}  // namespace kusd::pp
