#include "pp/configuration.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kusd::pp {

Configuration::Configuration(std::vector<Count> opinion_counts,
                             Count undecided)
    : opinions_(std::move(opinion_counts)), undecided_(undecided) {
  KUSD_CHECK_MSG(!opinions_.empty(), "need at least one opinion");
  n_ = undecided_;
  for (Count c : opinions_) n_ += c;
  KUSD_CHECK_MSG(n_ > 0, "empty population");
}

Configuration Configuration::uniform(Count n, int k, Count undecided) {
  KUSD_CHECK(k >= 1);
  KUSD_CHECK_MSG(undecided <= n, "more undecided agents than agents");
  const Count decided = n - undecided;
  const auto uk = static_cast<Count>(k);
  std::vector<Count> counts(static_cast<std::size_t>(k), decided / uk);
  for (Count i = 0; i < decided % uk; ++i) ++counts[i];
  return Configuration(std::move(counts), undecided);
}

Configuration Configuration::with_additive_bias(Count n, int k,
                                                Count undecided, Count beta) {
  KUSD_CHECK(k >= 2);
  KUSD_CHECK(undecided <= n);
  const Count decided = n - undecided;
  KUSD_CHECK_MSG(beta <= decided, "bias exceeds decided agents");
  const auto uk = static_cast<Count>(k);
  const Count base = (decided - beta) / uk;
  std::vector<Count> counts(static_cast<std::size_t>(k), base);
  counts[0] = decided - base * (uk - 1);  // absorbs beta and the remainder
  KUSD_CHECK(counts[0] >= base + beta);
  return Configuration(std::move(counts), undecided);
}

Configuration Configuration::with_multiplicative_bias(Count n, int k,
                                                      Count undecided,
                                                      double alpha) {
  KUSD_CHECK(k >= 2);
  KUSD_CHECK(undecided <= n);
  KUSD_CHECK_MSG(alpha > 1.0, "multiplicative bias must exceed 1");
  const Count decided = n - undecided;
  const double denom = alpha + static_cast<double>(k - 1);
  const auto base = static_cast<Count>(
      std::floor(static_cast<double>(decided) / denom));
  KUSD_CHECK_MSG(base >= 1, "population too small for this bias");
  std::vector<Count> counts(static_cast<std::size_t>(k), base);
  counts[0] = decided - base * static_cast<Count>(k - 1);
  KUSD_CHECK(static_cast<double>(counts[0]) >=
             alpha * static_cast<double>(base));
  return Configuration(std::move(counts), undecided);
}

Configuration Configuration::geometric(Count n, int k, Count undecided,
                                       double ratio) {
  KUSD_CHECK(k >= 1);
  KUSD_CHECK(undecided <= n);
  KUSD_CHECK_MSG(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
  const Count decided = n - undecided;
  std::vector<double> weights(static_cast<std::size_t>(k));
  double w = 1.0, total = 0.0;
  for (auto& x : weights) {
    x = w;
    total += w;
    w *= ratio;
  }
  std::vector<Count> counts(static_cast<std::size_t>(k));
  Count assigned = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<Count>(std::floor(
        static_cast<double>(decided) * weights[i] / total));
    assigned += counts[i];
  }
  counts[0] += decided - assigned;  // remainder to the plurality opinion
  return Configuration(std::move(counts), undecided);
}

Configuration Configuration::two_opinion(Count n, Count x0, Count undecided) {
  KUSD_CHECK(x0 + undecided <= n);
  return Configuration({x0, n - undecided - x0}, undecided);
}

std::vector<Count> Configuration::state_counts() const {
  std::vector<Count> out(opinions_.begin(), opinions_.end());
  out.push_back(undecided_);
  return out;
}

Count Configuration::xmax() const {
  return *std::max_element(opinions_.begin(), opinions_.end());
}

int Configuration::argmax() const {
  return static_cast<int>(std::distance(
      opinions_.begin(),
      std::max_element(opinions_.begin(), opinions_.end())));
}

Count Configuration::second_largest() const {
  if (k() < 2) return 0;
  Count best = 0, second = 0;
  for (Count c : opinions_) {
    if (c >= best) {
      second = best;
      best = c;
    } else if (c > second) {
      second = c;
    }
  }
  return second;
}

bool Configuration::is_consensus() const {
  return undecided_ == 0 && xmax() == n_;
}

double Configuration::sum_squares() const {
  double s = 0.0;
  for (Count c : opinions_) {
    const auto d = static_cast<double>(c);
    s += d * d;
  }
  return s;
}

}  // namespace kusd::pp
